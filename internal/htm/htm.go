// Package htm provides a simulated best-effort hardware transactional
// memory in the style of Intel TSX/RTM, used as the substrate for the
// accelerated tree-update-template algorithms of Brown (PODC 2017).
//
// Real RTM offers opaque transactions that are strongly atomic with
// respect to non-transactional code, and that abort with a reason code
// (conflict, capacity, explicit xabort, or a spurious event such as an
// interrupt). Go has no HTM intrinsics, so this package reproduces those
// two semantic properties in software with a TL2-flavoured design:
//
//   - Shared memory is held in cells (Ref[T] for pointers, Word for
//     uint64). Every access, transactional or not, goes through the cell
//     API. Each cell pairs its value with a version word encoded as
//     version<<1|lock.
//   - Every TM instance owns its version clock (cache-line padded), so
//     independent TMs — e.g. the shards of a sharded dictionary — never
//     contend on a shared clock cache line. Cells bound to the same
//     clock (Word.Bind / Ref.Bind) form one synchronization domain; a
//     TM's transactions must only touch cells bound to its clock.
//   - A transaction snapshots its TM's version clock at begin (rv),
//     buffers writes, and validates on every read that the cell version
//     is unlocked and at most rv, which yields opacity (no zombie
//     transactions).
//   - Commit try-locks the write set (failure aborts with Conflict,
//     mirroring HTM's abort-on-conflict rather than blocking), advances
//     the clock, validates the read set (skipped when no other write
//     happened since begin), applies the write set, and unlocks.
//   - Non-transactional stores and CAS operations lock the cell, bump the
//     cell's bound clock and the cell version, and unlock. Because they
//     advance the same clock and versions the transactions validate
//     against, transactions are strongly atomic with respect to them —
//     the property the paper's fallback-path interaction relies on.
//
// Capacity aborts are modelled by configurable read/write set limits and
// spurious aborts by a seeded per-access probability, so the execution
// path policies built on top observe the same abort-reason signals they
// would on hardware.
//
// A transaction is a single attempt, exactly like XBEGIN/XEND: retry
// policy belongs to the caller. Transactions must not be nested.
package htm

import (
	"sync"
	"sync/atomic"

	"htmtree/internal/fault"
)

// Default capacity and tuning parameters. The Intel-like profile is sized
// so that the paper's small range queries commit on the fast path while
// large ones overflow to the fallback path (Section 7.1); the POWER8-like
// profile reproduces the much smaller read footprint discussed in
// Section 8 (a POWER8 transaction aborts after touching 64 cache lines).
const (
	// DefaultReadCapacity ~ a few hundred tree nodes: point operations
	// (tens of cells) always fit, range queries over more than a few
	// hundred keys overflow — matching the paper's observation that its
	// [1,1000]-key BST range queries abort by capacity on Haswell.
	DefaultReadCapacity  = 2048
	DefaultWriteCapacity = 1024
	DefaultLockSpin      = 64

	power8ReadCapacity  = 512 // 64 lines x 8 words
	power8WriteCapacity = 512
)

// Config controls the simulated HTM implementation.
// The zero value selects the defaults (an Intel-like profile with
// spurious aborts disabled).
type Config struct {
	// ReadCapacity is the maximum number of read-set entries before a
	// transaction aborts with CauseCapacity.
	ReadCapacity int
	// WriteCapacity is the maximum number of write-set entries before a
	// transaction aborts with CauseCapacity.
	WriteCapacity int
	// SpuriousEvery, when non-zero, injects a CauseSpurious abort with
	// probability 1/SpuriousEvery at each transactional access. This
	// models interrupts, page faults and other best-effort failures.
	SpuriousEvery uint64
	// LockSpin is how many times a transactional read spins on a locked
	// cell (a commit in flight) before aborting with CauseConflict.
	LockSpin int
	// Seed seeds the deterministic per-thread PRNGs used for spurious
	// aborts. Zero selects a fixed default seed.
	Seed uint64
	// Backend selects the TM implementation (default BackendSim, the
	// TL2-flavoured simulator). ReadCapacity, WriteCapacity and
	// SpuriousEvery only apply to the simulator; BackendTLELock ignores
	// them. For a custom Backend implementation use NewWithBackend.
	Backend BackendKind
	// Faults, when non-nil, arms the deterministic fault-injection
	// plane at this TM's transactional accesses: a fault.PointTxAccess
	// effect forces an abort with the effect's cause (CauseSpurious
	// when unset) — the chaos harness's abort storm. Nil costs one
	// predictable branch per access on the simulator path.
	Faults *fault.Plan
}

// withDefaults returns c with zero fields replaced by default values.
func (c Config) withDefaults() Config {
	if c.ReadCapacity == 0 {
		c.ReadCapacity = DefaultReadCapacity
	}
	if c.WriteCapacity == 0 {
		c.WriteCapacity = DefaultWriteCapacity
	}
	if c.LockSpin == 0 {
		c.LockSpin = DefaultLockSpin
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	return c
}

// POWER8Config returns a configuration modelling IBM POWER8's much
// smaller transactional footprint (Section 8 of the paper): transactions
// abort after accessing 64 cache lines.
func POWER8Config() Config {
	return Config{
		ReadCapacity:  power8ReadCapacity,
		WriteCapacity: power8WriteCapacity,
	}
}

// TM is an instance of the simulated transactional memory. It carries
// the configuration, its own version clock, and the registry of threads
// whose statistics it aggregates. Cells start free-standing (their zero
// value supports transactional access), but cells a TM's transactions
// touch must be bound to that TM's clock before any non-transactional
// mutation.
type TM struct {
	cfg     Config
	clock   Clock
	backend Backend
	// sim is true when backend is the built-in simulator: the
	// transaction log uses it to keep per-access admission checks
	// devirtualized (and inlinable) on the hot path.
	sim bool
	// ann is the announcement slot of the helpable fallback protocol:
	// the descriptor of the fallback critical section currently
	// executing on this TM's trees, if any. See Announce.
	ann atomic.Pointer[announceBox]

	mu      sync.Mutex
	threads []*Thread
}

// New creates a transactional memory instance with the given
// configuration. Zero fields of cfg select defaults.
func New(cfg Config) *TM {
	return NewWithBackend(cfg, NewBackend(cfg.Backend))
}

// NewWithBackend creates a transactional memory instance driven by a
// caller-supplied Backend — the seam for plugging in a native hardware
// backend (see the Backend docs). The backend must not be shared with
// another TM unless its implementation allows it.
func NewWithBackend(cfg Config, b Backend) *TM {
	_, sim := b.(simBackend)
	return &TM{cfg: cfg.withDefaults(), backend: b, sim: sim}
}

// Backend returns the backend driving this TM.
func (tm *TM) Backend() Backend { return tm.backend }

// Config returns the (defaulted) configuration of the TM.
func (tm *TM) Config() Config { return tm.cfg }

// Clock returns the TM's version clock, for binding cells (Word.Bind,
// Ref.Bind) into the TM's synchronization domain.
func (tm *TM) Clock() *Clock { return &tm.clock }

// ClockValue returns the current value of the TM's version clock
// (exported for tests and diagnostics).
func (tm *TM) ClockValue() uint64 { return tm.clock.Now() }

// NewThread registers and returns a new thread context. Each Thread must
// be used by a single goroutine at a time.
func (tm *TM) NewThread() *Thread {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	th := &Thread{
		tm:     tm,
		id:     len(tm.threads),
		rng:    tm.cfg.Seed + uint64(len(tm.threads))*0xbf58476d1ce4e5b9 + 1,
		faults: tm.cfg.Faults,
	}
	th.tx.th = th
	tm.threads = append(tm.threads, th)
	return th
}

// Stats returns the sum of all registered threads' statistics. It is safe
// to call while threads are running; the snapshot is approximate in that
// case (counters are read without synchronization barriers between
// threads), which is all the benchmark reporting needs.
func (tm *TM) Stats() Stats {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	var s Stats
	for _, th := range tm.threads {
		s.add(&th.stats)
	}
	return s
}
