package htm

import (
	"sync"
	"testing"
)

// TestPerTMClockIndependence is the acceptance check for the per-TM
// version clock: two TM instances advance their clocks independently —
// commits on one never move the other's clock.
func TestPerTMClockIndependence(t *testing.T) {
	t.Parallel()
	tm1, tm2 := New(Config{}), New(Config{})
	th1, th2 := tm1.NewThread(), tm2.NewThread()
	var x1, x2 Word

	const commits = 100
	for i := 0; i < commits; i++ {
		if ok, ab := th1.Atomic(PathFast, func(tx *Tx) { x1.Set(tx, uint64(i)) }); !ok {
			t.Fatalf("tm1 commit %d failed: %+v", i, ab)
		}
	}
	if got := tm1.ClockValue(); got != commits {
		t.Fatalf("tm1 clock = %d, want %d", got, commits)
	}
	if got := tm2.ClockValue(); got != 0 {
		t.Fatalf("tm2 clock = %d after tm1 commits, want 0", got)
	}

	if ok, _ := th2.Atomic(PathFast, func(tx *Tx) { x2.Set(tx, 1) }); !ok {
		t.Fatal("tm2 commit failed")
	}
	if got := tm2.ClockValue(); got != 1 {
		t.Fatalf("tm2 clock = %d, want 1", got)
	}
	if got := tm1.ClockValue(); got != commits {
		t.Fatalf("tm1 clock moved to %d on tm2 commit, want %d", got, commits)
	}

	// Non-transactional mutations advance exactly the bound TM's clock.
	var w1, w2 Word
	w1.Bind(tm1.Clock())
	w2.Bind(tm2.Clock())
	w1.Set(nil, 7)
	if got := tm1.ClockValue(); got != commits+1 {
		t.Fatalf("tm1 clock after bound Set = %d, want %d", got, commits+1)
	}
	if got := tm2.ClockValue(); got != 1 {
		t.Fatalf("tm2 clock after tm1-bound Set = %d, want 1", got)
	}
	w2.Add(1)
	if got := tm2.ClockValue(); got != 2 {
		t.Fatalf("tm2 clock after bound Add = %d, want 2", got)
	}
}

// TestUnboundNonTxMutationPanics: a cell that was never bound to a TM
// clock must fail loudly on its first non-transactional mutation, not
// corrupt version ordering silently.
func TestUnboundNonTxMutationPanics(t *testing.T) {
	t.Parallel()
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on unbound cell did not panic", name)
			}
		}()
		fn()
	}
	check("Word.Set", func() { new(Word).Set(nil, 1) })
	check("Word.CAS", func() { new(Word).CAS(nil, 0, 1) })
	check("Word.Add", func() { new(Word).Add(1) })
	check("Word.Recycle", func() { new(Word).Recycle(1) })
	x := 1
	check("Ref.Set", func() { new(Ref[int]).Set(nil, &x) })
	check("Ref.CAS", func() { new(Ref[int]).CAS(nil, nil, &x) })
	check("Ref.Recycle", func() { new(Ref[int]).Recycle(&x) })
}

// TestAcquireNonTxBackoffCorrectness hammers one cell from many
// goroutines through the backoff-based lock acquisition; no increment
// may be lost and the lock bit must always be released.
func TestAcquireNonTxBackoffCorrectness(t *testing.T) {
	t.Parallel()
	var w Word
	w.Bind(NewClock())
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := w.Get(nil); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if w.ver.Load()&lockBit != 0 {
		t.Fatal("version word left locked")
	}
}

// TestRecycleAbortsStaleReader reproduces the Section 9 fast-path
// recycling rule at the cell level: a transaction that began before a
// cell was recycled must abort when it touches the recycled cell, never
// observe the new value under its old snapshot.
func TestRecycleAbortsStaleReader(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	var pub, cell Word
	pub.Bind(tm.Clock())
	cell.Bind(tm.Clock())
	cell.Set(nil, 1)

	ok, ab := th.Atomic(PathFast, func(tx *Tx) {
		_ = pub.Get(tx) // establish the snapshot with a benign read
		// Another thread commits a removal (simulated by a clock tick)
		// and immediately recycles the cell for a new node.
		pub.Set(nil, 1)
		cell.Recycle(99)
		_ = cell.Get(tx)
		t.Error("stale reader observed a recycled cell without aborting")
	})
	if ok || ab.Cause != CauseConflict {
		t.Fatalf("ok=%v abort=%+v, want conflict abort", ok, ab)
	}
	// A fresh transaction (snapshot taken after the recycle) reads the
	// recycled value normally.
	ok, _ = th.Atomic(PathFast, func(tx *Tx) {
		if got := cell.Get(tx); got != 99 {
			t.Errorf("fresh reader got %d, want 99", got)
		}
	})
	if !ok {
		t.Fatal("fresh reader aborted")
	}
}
