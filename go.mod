module htmtree

go 1.24
