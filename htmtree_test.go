package htmtree_test

import (
	"math/rand"
	"sync"
	"testing"

	"htmtree"
)

func TestFacadeBothTreesAllAlgorithms(t *testing.T) {
	t.Parallel()
	type ctor struct {
		name string
		mk   func(htmtree.Config) (*htmtree.Tree, error)
	}
	for _, c := range []ctor{{"bst", htmtree.NewBST}, {"abtree", htmtree.NewABTree}} {
		for _, alg := range htmtree.Algorithms() {
			c, alg := c, alg
			t.Run(c.name+"/"+string(alg), func(t *testing.T) {
				t.Parallel()
				tree, err := c.mk(htmtree.Config{Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				h := tree.NewHandle()
				for k := uint64(1); k <= 100; k++ {
					if _, existed := h.Insert(k, k*3); existed {
						t.Fatalf("Insert(%d) reported existing", k)
					}
				}
				if v, ok := h.Search(50); !ok || v != 150 {
					t.Fatalf("Search(50) = %d,%v", v, ok)
				}
				out := h.RangeQuery(10, 20, nil)
				if len(out) != 10 || out[0].Key != 10 || out[9].Key != 19 {
					t.Fatalf("RangeQuery(10,20) = %v", out)
				}
				for k := uint64(1); k <= 100; k += 2 {
					if _, existed := h.Delete(k); !existed {
						t.Fatalf("Delete(%d) missed", k)
					}
				}
				if sum, count := tree.KeySum(); count != 50 {
					t.Fatalf("KeySum = %d,%d want 50 keys", sum, count)
				}
				if err := tree.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				st := tree.Stats()
				if st.Ops.Total() == 0 {
					t.Fatal("no operations recorded")
				}
			})
		}
	}
}

func TestFacadeShardedTrees(t *testing.T) {
	t.Parallel()
	type ctor struct {
		name string
		mk   func(htmtree.Config) (*htmtree.Tree, error)
	}
	for _, c := range []ctor{{"bst", htmtree.NewShardedBST}, {"abtree", htmtree.NewShardedABTree}} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			tree, err := c.mk(htmtree.Config{
				Algorithm:    htmtree.ThreePath,
				Shards:       4,
				ShardKeySpan: 1000,
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h := tree.NewHandle()
					for k := uint64(g); k < 1000; k += 4 {
						h.Insert(k+1, (k+1)*10)
					}
				}(g)
			}
			wg.Wait()
			h := tree.NewHandle()
			if v, ok := h.Search(500); !ok || v != 5000 {
				t.Fatalf("Search(500) = (%d,%v), want (5000,true)", v, ok)
			}
			// A range query spanning every shard boundary (shard width 250)
			// must come back complete and globally key-ordered.
			out := h.RangeQuery(1, 1001, nil)
			if len(out) != 1000 {
				t.Fatalf("full RangeQuery returned %d pairs, want 1000", len(out))
			}
			for i, kv := range out {
				if kv.Key != uint64(i+1) || kv.Val != uint64(i+1)*10 {
					t.Fatalf("RangeQuery[%d] = (%d,%d), want (%d,%d)",
						i, kv.Key, kv.Val, i+1, (i+1)*10)
				}
			}
			if sum, count := tree.KeySum(); count != 1000 || sum != 1000*1001/2 {
				t.Fatalf("KeySum = (%d,%d), want (%d,1000)", sum, count, 1000*1001/2)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if st := tree.Stats(); st.Ops.Total() == 0 {
				t.Fatal("sharded Stats recorded no operations")
			}
		})
	}
	// Config errors surface through the sharded constructors too.
	if _, err := htmtree.NewShardedBST(htmtree.Config{Algorithm: "bogus"}); err == nil {
		t.Fatal("NewShardedBST accepted an unknown algorithm")
	}
	if _, err := htmtree.NewShardedABTree(htmtree.Config{Shards: -3}); err == nil {
		t.Fatal("NewShardedABTree accepted a negative shard count")
	}
	if _, err := htmtree.NewShardedBST(htmtree.Config{Router: "bogus"}); err == nil {
		t.Fatal("NewShardedBST accepted an unknown router")
	}
	if _, err := htmtree.NewShardedBST(htmtree.Config{Router: htmtree.RouterAdaptive, RebalanceRatio: -1}); err == nil {
		t.Fatal("NewShardedBST accepted a negative rebalance ratio")
	}
}

// TestFacadeRouters drives the sharded facade under every routing
// policy: operations behave identically, and the adaptive router
// surfaces its rebalancing counters through Stats.
func TestFacadeRouters(t *testing.T) {
	t.Parallel()
	for _, router := range htmtree.RouterKinds() {
		router := router
		t.Run(string(router), func(t *testing.T) {
			t.Parallel()
			tree, err := htmtree.NewShardedBST(htmtree.Config{
				Algorithm:         htmtree.ThreePath,
				Shards:            4,
				ShardKeySpan:      1 << 12,
				Router:            router,
				RebalanceCheckOps: 64,
				RebalanceRatio:    0.01,
			})
			if err != nil {
				t.Fatal(err)
			}
			h := tree.NewHandle()
			var wantSum, wantCount uint64
			for i := 0; i < 20000; i++ {
				k := uint64(i%600) + 1 // skewed into the low shard
				if i%3 == 2 {
					if _, existed := h.Delete(k); existed {
						wantSum -= k
						wantCount--
					}
				} else {
					if _, existed := h.Insert(k, k); !existed {
						wantSum += k
						wantCount++
					}
				}
			}
			sum, count := tree.KeySum()
			if sum != wantSum || count != wantCount {
				t.Fatalf("KeySum = (%d,%d), want (%d,%d)", sum, count, wantSum, wantCount)
			}
			out := h.RangeQuery(1, 601, nil)
			if uint64(len(out)) != count {
				t.Fatalf("RangeQuery returned %d pairs, want %d", len(out), count)
			}
			for i := 1; i < len(out); i++ {
				if out[i-1].Key >= out[i].Key {
					t.Fatalf("fan-out unsorted at %d under %s routing", i, router)
				}
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := tree.Stats()
			if router == htmtree.RouterAdaptive && st.Rebalance.Migrations == 0 {
				t.Fatalf("adaptive tree reported no migrations: %+v", st.Rebalance)
			}
			if router != htmtree.RouterAdaptive && (st.Rebalance.Migrations != 0 || st.Rebalance.Checks != 0) {
				t.Fatalf("non-adaptive tree reported rebalancing: %+v", st.Rebalance)
			}
		})
	}
}

func TestFacadeRejectsBadConfig(t *testing.T) {
	t.Parallel()
	if _, err := htmtree.NewBST(htmtree.Config{Algorithm: "bogus"}); err == nil {
		t.Fatal("NewBST accepted an unknown algorithm")
	}
	if _, err := htmtree.NewABTree(htmtree.Config{A: 6, B: 7}); err == nil {
		t.Fatal("NewABTree accepted b < 2a-1")
	}
}

func TestFacadeConcurrentUse(t *testing.T) {
	t.Parallel()
	tree, err := htmtree.NewABTree(htmtree.Config{Algorithm: htmtree.ThreePath})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tree.NewHandle()
			for i := 0; i < 2000; i++ {
				k := uint64((g*2000+i)%500) + 1
				switch i % 3 {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Delete(k)
				case 2:
					h.Search(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.TxCommits.Fast == 0 {
		t.Fatal("no fast-path commits recorded")
	}
}

// TestAsyncHandleQuickstart exercises the asynchronous API end to end
// on an unsharded tree: futures, callbacks, flush triggers, and
// read-your-writes range queries.
func TestAsyncHandleQuickstart(t *testing.T) {
	t.Parallel()
	tree, err := htmtree.NewABTree(htmtree.Config{BatchMaxOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	ah := tree.NewAsyncHandle()
	fut := ah.Insert(42, 420)
	if fut.Done() {
		t.Fatal("future resolved before any flush trigger")
	}
	if v, ok := ah.Search(42).Wait(); !ok || v != 420 {
		t.Fatalf("async Search(42) = (%d,%v), want (420,true)", v, ok)
	}
	if _, ok := fut.Wait(); ok {
		t.Fatal("first insert reported an existing key")
	}
	got := ah.RangeQuery(0, 100).Wait()
	if len(got) != 1 || got[0].Key != 42 || got[0].Val != 420 {
		t.Fatalf("async RangeQuery = %v", got)
	}
	st := tree.Stats()
	if st.Batch.Flushes == 0 || st.Batch.BatchedOps != 2 {
		t.Fatalf("Stats.Batch = %+v, want 2 batched ops", st.Batch)
	}
}

// TestBatchContextOverHandle exercises Handle.Batch: the context
// shares the handle's registration, flushes on the calling goroutine
// only, and hands the handle back after Flush.
func TestBatchContextOverHandle(t *testing.T) {
	t.Parallel()
	tree, err := htmtree.NewShardedBST(htmtree.Config{Shards: 4, ShardKeySpan: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	h := tree.NewHandle()
	b := h.Batch()
	var futs []htmtree.PointFuture
	for k := uint64(1); k <= 20; k++ {
		futs = append(futs, b.Insert(k, k*10))
	}
	b.Flush()
	for i, f := range futs {
		if _, ok := f.Wait(); ok {
			t.Fatalf("insert %d reported an existing key", i)
		}
	}
	// The plain handle sees the batch's writes.
	if v, ok := h.Search(7); !ok || v != 70 {
		t.Fatalf("Search(7) through the shared handle = (%d,%v)", v, ok)
	}
}

// TestBatchAmortizationCounts asserts the acceptance criterion on a
// host-independent metric: at batch size 64 on an 8-shard rebalancing
// tree, group execution must cut both the router-lookup and the
// monitor-bracket count at least 4x versus unbatched dispatch (which
// pays one of each per operation).
func TestBatchAmortizationCounts(t *testing.T) {
	t.Parallel()
	const (
		keySpan  = 1 << 16
		batches  = 50
		batchLen = 64
	)
	tree, err := htmtree.NewShardedABTree(htmtree.Config{
		Shards:       8,
		ShardKeySpan: keySpan,
		Router:       htmtree.RouterAdaptive, // admitting handles: brackets are counted
		// A huge evaluation window keeps migrations out of the
		// measurement, so the counts reflect pure batched dispatch.
		RebalanceCheckOps: 1 << 30,
		BatchMaxOps:       batchLen,
	})
	if err != nil {
		t.Fatal(err)
	}
	ah := tree.NewAsyncHandle()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < batches*batchLen; i++ {
		k := uint64(rng.Intn(keySpan)) + 1
		if i%2 == 0 {
			ah.Insert(k, k)
		} else {
			ah.Delete(k)
		}
	}
	ah.Flush()
	st := tree.Stats().Batch
	if st.GroupOps != batches*batchLen {
		t.Fatalf("GroupOps = %d, want %d", st.GroupOps, batches*batchLen)
	}
	if st.RouterLookups == 0 || st.MonitorBrackets == 0 {
		t.Fatalf("amortization counters empty: %+v", st)
	}
	if ratio := float64(st.GroupOps) / float64(st.RouterLookups); ratio < 4 {
		t.Fatalf("router lookups amortized only %.2fx (unbatched pays %d, batched paid %d)",
			ratio, st.GroupOps, st.RouterLookups)
	}
	if ratio := float64(st.GroupOps) / float64(st.MonitorBrackets); ratio < 4 {
		t.Fatalf("monitor brackets amortized only %.2fx (unbatched pays %d, batched paid %d)",
			ratio, st.GroupOps, st.MonitorBrackets)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
