package htmtree_test

import (
	"sync"
	"testing"

	"htmtree"
)

func TestFacadeBothTreesAllAlgorithms(t *testing.T) {
	t.Parallel()
	type ctor struct {
		name string
		mk   func(htmtree.Config) (*htmtree.Tree, error)
	}
	for _, c := range []ctor{{"bst", htmtree.NewBST}, {"abtree", htmtree.NewABTree}} {
		for _, alg := range htmtree.Algorithms() {
			c, alg := c, alg
			t.Run(c.name+"/"+string(alg), func(t *testing.T) {
				t.Parallel()
				tree, err := c.mk(htmtree.Config{Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				h := tree.NewHandle()
				for k := uint64(1); k <= 100; k++ {
					if _, existed := h.Insert(k, k*3); existed {
						t.Fatalf("Insert(%d) reported existing", k)
					}
				}
				if v, ok := h.Search(50); !ok || v != 150 {
					t.Fatalf("Search(50) = %d,%v", v, ok)
				}
				out := h.RangeQuery(10, 20, nil)
				if len(out) != 10 || out[0].Key != 10 || out[9].Key != 19 {
					t.Fatalf("RangeQuery(10,20) = %v", out)
				}
				for k := uint64(1); k <= 100; k += 2 {
					if _, existed := h.Delete(k); !existed {
						t.Fatalf("Delete(%d) missed", k)
					}
				}
				if sum, count := tree.KeySum(); count != 50 {
					t.Fatalf("KeySum = %d,%d want 50 keys", sum, count)
				}
				if err := tree.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				st := tree.Stats()
				if st.Ops.Total() == 0 {
					t.Fatal("no operations recorded")
				}
			})
		}
	}
}

func TestFacadeRejectsBadConfig(t *testing.T) {
	t.Parallel()
	if _, err := htmtree.NewBST(htmtree.Config{Algorithm: "bogus"}); err == nil {
		t.Fatal("NewBST accepted an unknown algorithm")
	}
	if _, err := htmtree.NewABTree(htmtree.Config{A: 6, B: 7}); err == nil {
		t.Fatal("NewABTree accepted b < 2a-1")
	}
}

func TestFacadeConcurrentUse(t *testing.T) {
	t.Parallel()
	tree, err := htmtree.NewABTree(htmtree.Config{Algorithm: htmtree.ThreePath})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tree.NewHandle()
			for i := 0; i < 2000; i++ {
				k := uint64((g*2000+i)%500) + 1
				switch i % 3 {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Delete(k)
				case 2:
					h.Search(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.TxCommits.Fast == 0 {
		t.Fatal("no fast-path commits recorded")
	}
}
