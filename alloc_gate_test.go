package htmtree_test

import (
	"testing"
	"time"

	"htmtree"
	"htmtree/internal/hist"
)

// Allocation-regression gate (PR 5 acceptance): steady-state point
// operations on the pooled BST and (a,b)-tree must not allocate. Inserts
// draw nodes from the per-thread pools that deletions refill through
// epoch-based reclamation, value updates mutate leaves in place, and the
// engine/htm plumbing (transaction logs, op closures, monitor wrappers)
// is allocated once per handle — so after warmup, AllocsPerRun must
// observe zero.
//
// CI runs this test explicitly in the bench-smoke job; a regression here
// means something on the hot path started allocating again.

// warmups populate the tree, the handle's pools, and every
// amortized-growth buffer (transaction logs, scratch slices) before
// measurement.
const (
	gateKeys    = 512
	gateWarmups = 200
)

func gateCheck(t *testing.T, name string, avg float64) {
	t.Helper()
	if avg != 0 {
		t.Errorf("%s: %.2f allocs/op in steady state, want 0", name, avg)
	}
}

func TestAllocGateBSTPointOps(t *testing.T) {
	tree, err := htmtree.NewBST(htmtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := tree.NewHandle()
	for k := uint64(1); k <= gateKeys; k++ {
		h.Insert(k, k)
	}
	k := uint64(gateKeys / 2)
	for i := 0; i < gateWarmups; i++ {
		h.Delete(k)
		h.Insert(k, k)
	}

	gateCheck(t, "bst delete+insert", testing.AllocsPerRun(200, func() {
		h.Delete(k)
		h.Insert(k, k)
	}))
	gateCheck(t, "bst value update", testing.AllocsPerRun(200, func() {
		h.Insert(k, 7)
	}))
	gateCheck(t, "bst search", testing.AllocsPerRun(200, func() {
		h.Search(k)
	}))
}

func TestAllocGateABTreePointOps(t *testing.T) {
	tree, err := htmtree.NewABTree(htmtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := tree.NewHandle()
	for k := uint64(1); k <= gateKeys; k++ {
		h.Insert(k, k)
	}
	k := uint64(gateKeys / 2)
	for i := 0; i < gateWarmups; i++ {
		h.Delete(k)
		h.Insert(k, k)
	}

	gateCheck(t, "abtree delete+insert", testing.AllocsPerRun(200, func() {
		h.Delete(k)
		h.Insert(k, k)
	}))
	gateCheck(t, "abtree value update", testing.AllocsPerRun(200, func() {
		h.Insert(k, 7)
	}))
	gateCheck(t, "abtree search", testing.AllocsPerRun(200, func() {
		h.Search(k)
	}))
}

// TestAllocGateAggregateQueries gates the PR 8 aggregate query paths:
// steady-state RangeAgg (and the whole-tree Count/Min/Max forms) on an
// unsharded tree must not allocate — the (a,b)-tree's transactional
// descent uses handle-resident scratch, its LLX-walk fallback a
// fixed-depth node stack, and the BST control reuses the handle's
// retained range-query buffer. (Sharded RangeAgg fans out through
// closures and is exempt; the gate covers the tree-level hot path.)
func TestAllocGateAggregateQueries(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(htmtree.Config) (*htmtree.Tree, error)
	}{
		{"abtree", htmtree.NewABTree},
		{"bst", htmtree.NewBST},
	} {
		tree, err := tc.mk(htmtree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		h := tree.NewHandle()
		for k := uint64(1); k <= gateKeys; k++ {
			h.Insert(k, k)
		}
		aggCycle := func() {
			if _, err := h.RangeAgg(gateKeys/4, 3*gateKeys/4); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Count(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := h.Min(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := h.Max(); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < gateWarmups; i++ {
			aggCycle()
		}
		gateCheck(t, tc.name+" aggregate queries", testing.AllocsPerRun(200, aggCycle))
	}
}

// TestAllocGateLatencyCapture gates the PR 7 latency instrumentation:
// the per-operation capture the workload driver performs under
// MeasureLatency — a clock read, the operation, a histogram Record —
// must not allocate, or measuring latency would distort the very tail
// it measures with GC pauses.
func TestAllocGateLatencyCapture(t *testing.T) {
	tree, err := htmtree.NewBST(htmtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := tree.NewHandle()
	for k := uint64(1); k <= gateKeys; k++ {
		h.Insert(k, k)
	}
	k := uint64(gateKeys / 2)
	var lh hist.Hist
	for i := 0; i < gateWarmups; i++ {
		t0 := time.Now()
		h.Delete(k)
		h.Insert(k, k)
		lh.Record(uint64(time.Since(t0)))
	}
	gateCheck(t, "latencied delete+insert", testing.AllocsPerRun(200, func() {
		t0 := time.Now()
		h.Delete(k)
		h.Insert(k, k)
		lh.Record(uint64(time.Since(t0)))
	}))
	if lh.Count() == 0 || lh.Quantile(0.99) == 0 {
		t.Fatal("capture recorded nothing")
	}
}

// TestAllocGateObservedPointOps gates the PR 9 observability layer:
// steady-state point operations on a tree built with
// Config.Observability — latency sampling, flight-recorder events and
// trace regions armed at their defaults — must still not allocate. The
// instrumentation was designed for this: metric families are read
// closures over counters the engine already maintains, sampled latencies
// land in a preallocated atomic histogram, events are four atomic word
// stores into a preallocated ring, and the trace region is the
// runtime's shared no-op when tracing is off.
func TestAllocGateObservedPointOps(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(htmtree.Config) (*htmtree.Tree, error)
	}{
		{"bst", htmtree.NewBST},
		{"abtree", htmtree.NewABTree},
		{"sharded-abtree", htmtree.NewShardedABTree},
	} {
		tree, err := tc.mk(htmtree.Config{Observability: &htmtree.ObsConfig{}})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Obs() == nil {
			t.Fatalf("%s: Observability set but Obs() == nil", tc.name)
		}
		h := tree.NewHandle()
		for k := uint64(1); k <= gateKeys; k++ {
			h.Insert(k, k)
		}
		k := uint64(gateKeys / 2)
		for i := 0; i < gateWarmups; i++ {
			h.Delete(k)
			h.Insert(k, k)
		}
		gateCheck(t, tc.name+" observed delete+insert", testing.AllocsPerRun(200, func() {
			h.Delete(k)
			h.Insert(k, k)
		}))
		gateCheck(t, tc.name+" observed search", testing.AllocsPerRun(200, func() {
			h.Search(k)
		}))
		if tree.Obs().LatencySnapshot().Count() == 0 {
			t.Errorf("%s: no sampled latencies recorded", tc.name)
		}
		if len(tree.Obs().Events()) == 0 {
			t.Errorf("%s: no flight-recorder events recorded", tc.name)
		}
	}
}
